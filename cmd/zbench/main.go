// Command zbench measures the repository's headline performance
// numbers — packed-replay ns/instr, the Source-interface dispatch tax,
// streaming generation cost, full-simulation ns/instr per machine
// generation, and coordinator sweep throughput over 1/2/4 backends —
// and writes them as one schema-versioned JSON document.
//
// The intended workflow is a trajectory: each performance PR runs
// `make bench-json` and commits the resulting BENCH_<pr>.json next to
// the previous ones, so the repo history carries a machine-readable
// record of how the hot path moved. The schema is versioned so later
// tooling can consume old files; fields are only ever added.
//
// Usage:
//
//	zbench                   # print the document to stdout
//	zbench -out BENCH_6.json # write to a file
//	zbench -scale 200000     # instructions per measured operation
//	zbench -only replay      # measure a name-prefix subset
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"zbp/internal/cluster"
	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/server"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// schema identifies the document layout. Bump only for breaking
// changes; additive fields keep the same version.
const schema = "zbench/1"

// benchDoc is the emitted document.
type benchDoc struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	CPUs        int          `json:"cpus"`
	Scale       int          `json:"scale"`
	Entries     []benchEntry `json:"entries"`
}

// benchEntry is one measured benchmark.
type benchEntry struct {
	// Name identifies the measurement ("replay/packed", "sim/z15", ...).
	Name string `json:"name"`
	// Instructions is the per-operation instruction count (the -scale).
	Instructions int `json:"instructions"`
	// Iterations is how many operations testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// WallNsPerOp is wall time per operation (one full pass).
	WallNsPerOp int64 `json:"wall_ns_per_op"`
	// NsPerInstr is the headline: wall time per instruction.
	NsPerInstr  float64 `json:"ns_per_instr"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// CellsPerOp is the sweep grid size for cluster entries (additive
	// field; zero for the single-cell benchmarks).
	CellsPerOp int `json:"cells_per_op,omitempty"`
	// Note carries measurement caveats a reader needs to interpret the
	// number honestly (e.g. host CPU count capping real scaling).
	Note string `json:"note,omitempty"`
}

func main() {
	var (
		out   = flag.String("out", "", "output path (default: stdout)")
		scale = flag.Int("scale", 200_000, "instructions per measured operation")
		seed  = flag.Uint64("seed", 42, "workload seed")
		wl    = flag.String("workload", "lspr", "workload for the replay benchmarks")
		only  = flag.String("only", "", "measure only entries whose name has this prefix")
	)
	flag.Parse()

	entries, err := measure(*scale, *seed, *wl, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	doc := benchDoc{
		Schema:      schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Scale:       *scale,
		Entries:     entries,
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "zbench: wrote %d entries to %s\n", len(entries), *out)
}

// measure runs every selected benchmark through testing.Benchmark and
// renders the results as entries. Progress goes to stderr because the
// document may be going to stdout.
func measure(scale int, seed uint64, wl, only string) ([]benchEntry, error) {
	p, err := workload.MakePacked(wl, seed, scale)
	if err != nil {
		return nil, err
	}

	type bench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []bench{
		{"replay/packed", func(b *testing.B) { replayPacked(b, p, scale) }},
		{"replay/packed-iface", func(b *testing.B) { replayIface(b, p, scale) }},
		{"replay/streaming", func(b *testing.B) { replayStreaming(b, wl, seed, scale) }},
	}
	for _, gen := range core.Generations() {
		cfg := sim.ForGeneration(gen)
		name := "sim/" + gen.Name
		benches = append(benches, bench{name, func(b *testing.B) { simPacked(b, cfg, p, scale) }})
	}

	var entries []benchEntry
	for _, bm := range benches {
		if only != "" && !strings.HasPrefix(bm.name, only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "zbench: %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", bm.name)
		}
		entries = append(entries, benchEntry{
			Name:         bm.name,
			Instructions: scale,
			Iterations:   r.N,
			WallNsPerOp:  r.NsPerOp(),
			NsPerInstr:   float64(r.NsPerOp()) / float64(scale),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
		})
	}
	cl, err := clusterEntries(scale, seed, only)
	if err != nil {
		return nil, err
	}
	return append(entries, cl...), nil
}

// --- coordinator scaling ---------------------------------------------

// clusterEntries measures coordinator sweep throughput against 1, 2,
// and 4 backends, twice:
//
//   - cluster/sweep-N: real in-process zbpd backends, cache-cold
//     (no_cache) sweeps. The work is compute-bound, so wall-clock
//     scaling is capped by the host's physical CPU count — on a 1-CPU
//     box all three land near 1x, and the entry's note says so.
//   - cluster/fabric-N: mock backends with a fixed service time per
//     cell. Backend compute is out of the picture, so this isolates
//     the dispatch fabric — routing, slots, HTTP round-trips — which
//     must scale with backend count regardless of host CPUs.
func clusterEntries(scale int, seed uint64, only string) ([]benchEntry, error) {
	var entries []benchEntry
	if only != "" && !strings.HasPrefix("cluster/", only) && !strings.HasPrefix(only, "cluster") {
		return nil, nil
	}

	realGrid := server.SweepRequest{
		Configs:      []string{"z15"},
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{seed, seed + 1, seed + 2, seed + 3},
		Instructions: scale,
	}
	realCells := len(realGrid.Configs) * len(realGrid.Workloads) * len(realGrid.Seeds)

	// 150 ms keeps the per-cell coordinator CPU cost (a few ms of
	// JSON+HTTP, all serialized on a small host) a rounding error next
	// to the simulated backend service time, so the scaling curve
	// reflects the dispatch fabric rather than the host's core count.
	const fabricService = 150 * time.Millisecond
	const fabricInstr = 1000
	fabricSeeds := make([]uint64, 48)
	for i := range fabricSeeds {
		fabricSeeds[i] = seed + uint64(i)
	}
	fabricGrid := server.SweepRequest{
		Configs:      []string{"z15"},
		Workloads:    []string{"loops"},
		Seeds:        fabricSeeds,
		Instructions: fabricInstr,
	}
	canned, err := fabricStats()
	if err != nil {
		return nil, fmt.Errorf("fabric stats: %w", err)
	}

	for _, n := range []int{1, 2, 4} {
		name := fmt.Sprintf("cluster/sweep-%d", n)
		if only == "" || strings.HasPrefix(name, only) {
			e, err := measureSweep(name, n, realGrid, realCells, true, realBackends)
			if err != nil {
				return nil, err
			}
			e.Note = fmt.Sprintf("cache-cold sweep over %d real in-process backend(s); compute-bound, scaling capped by host CPUs (%d here)", n, runtime.NumCPU())
			entries = append(entries, e)
		}
	}
	for _, n := range []int{1, 2, 4} {
		name := fmt.Sprintf("cluster/fabric-%d", n)
		if only == "" || strings.HasPrefix(name, only) {
			// no_cache keeps every iteration on the dispatch path: the
			// coordinator's own result cache would otherwise serve every
			// op after the first and the entry would measure cache reads.
			e, err := measureSweep(name, n, fabricGrid, len(fabricSeeds), true, func(n int) ([]string, func(), error) {
				return mockBackends(n, fabricService, canned)
			})
			if err != nil {
				return nil, err
			}
			e.Note = fmt.Sprintf("dispatch-fabric scaling over %d mock backend(s) with a fixed %s per-cell service time; isolates coordinator overhead from backend compute", n, fabricService)
			entries = append(entries, e)
		}
	}
	name := "cluster/coord-cache"
	if only == "" || strings.HasPrefix(name, only) {
		e, err := measureCoordCache(name, fabricGrid, len(fabricSeeds), canned)
		if err != nil {
			return nil, err
		}
		e.Note = "warm repeat sweep served entirely from the coordinator result cache; zero backend dispatches per op (verified against backend counters)"
		entries = append(entries, e)
	}
	return entries, nil
}

// measureCoordCache runs the grid once cold to fill the coordinator's
// result cache, then benchmarks repeat sweeps, which must be served
// without a single backend dispatch.
func measureCoordCache(name string, grid server.SweepRequest, cells int, stats json.RawMessage) (benchEntry, error) {
	urls, stop, err := mockBackends(2, 20*time.Millisecond, stats)
	if err != nil {
		return benchEntry{}, err
	}
	defer stop()
	coord, err := cluster.New(cluster.Config{
		Backends:         urls,
		Router:           "rendezvous",
		AdmitCellsPerSec: -1,
		HedgeDelay:       -1,
		AuditEvery:       -1, // audits re-dispatch for real and would count as backend traffic
	})
	if err != nil {
		return benchEntry{}, err
	}
	defer coord.Close()

	fmt.Fprintf(os.Stderr, "zbench: %s...\n", name)
	cold, err := coord.RunSweep(context.Background(), grid, false, nil)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: cold pass: %w", name, err)
	}
	if cold.Errors != 0 {
		return benchEntry{}, fmt.Errorf("%s: cold pass: %d of %d cells errored", name, cold.Errors, cells)
	}
	dispatched := func() int64 {
		var n int64
		for _, b := range coord.Backends() {
			n += b.Dispatched
		}
		return n
	}
	baseline := dispatched()

	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cached := 0
			resp, err := coord.RunSweep(context.Background(), grid, false, func(ev cluster.CellEvent) {
				if ev.Cached {
					cached++
				}
			})
			if err != nil {
				failure = err
				b.FailNow()
			}
			if resp.Errors != 0 || cached != cells {
				failure = fmt.Errorf("warm sweep not fully cache-served: %d errors, %d/%d cached",
					resp.Errors, cached, cells)
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", name, failure)
	}
	if r.N == 0 {
		return benchEntry{}, fmt.Errorf("%s: benchmark did not run", name)
	}
	if d := dispatched() - baseline; d != 0 {
		return benchEntry{}, fmt.Errorf("%s: %d backend dispatches during warm passes, want 0", name, d)
	}
	instr := cells * grid.Instructions
	return benchEntry{
		Name:         name,
		Instructions: instr,
		Iterations:   r.N,
		WallNsPerOp:  r.NsPerOp(),
		NsPerInstr:   float64(r.NsPerOp()) / float64(instr),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		CellsPerOp:   cells,
	}, nil
}

// measureSweep boots a fleet, runs the grid as one coordinator sweep
// per benchmark operation, and tears the fleet down.
func measureSweep(name string, n int, grid server.SweepRequest, cells int, noCache bool, boot func(int) ([]string, func(), error)) (benchEntry, error) {
	urls, stop, err := boot(n)
	if err != nil {
		return benchEntry{}, err
	}
	defer stop()
	coord, err := cluster.New(cluster.Config{
		Backends:         urls,
		Router:           "round-robin", // even spread: cache affinity buys nothing cache-cold
		AdmitCellsPerSec: -1,            // admission off: the bench is the load generator
		HedgeDelay:       -1,            // hedging off: duplicates would blur per-backend cost
	})
	if err != nil {
		return benchEntry{}, err
	}
	defer coord.Close()

	fmt.Fprintf(os.Stderr, "zbench: %s...\n", name)
	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := coord.RunSweep(context.Background(), grid, noCache, nil)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if resp.Errors != 0 {
				failure = fmt.Errorf("%d of %d cells errored", resp.Errors, cells)
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", name, failure)
	}
	if r.N == 0 {
		return benchEntry{}, fmt.Errorf("%s: benchmark did not run", name)
	}
	instr := cells * grid.Instructions
	return benchEntry{
		Name:         name,
		Instructions: instr,
		Iterations:   r.N,
		WallNsPerOp:  r.NsPerOp(),
		NsPerInstr:   float64(r.NsPerOp()) / float64(instr),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		CellsPerOp:   cells,
	}, nil
}

// realBackends boots n full zbpd single-box servers on loopback.
func realBackends(n int) ([]string, func(), error) {
	urls := make([]string, 0, n)
	var closers []func()
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Workers: 2, QueueDepth: 256, AuditEvery: -1})
		if err != nil {
			for _, c := range closers {
				c()
			}
			return nil, nil, err
		}
		ts := httptest.NewServer(s.Handler())
		urls = append(urls, ts.URL)
		closers = append(closers, func() { ts.Close(); s.Close() })
	}
	return urls, func() {
		for _, c := range closers {
			c()
		}
	}, nil
}

// mockBackends boots n fake backends that accept any cell, sleep the
// fixed service time, and return the canned stats blob.
func mockBackends(n int, service time.Duration, stats json.RawMessage) ([]string, func(), error) {
	resp, err := json.Marshal(server.CellResponse{Stats: stats})
	if err != nil {
		return nil, nil, err
	}
	urls := make([]string, 0, n)
	var closers []func()
	for i := 0; i < n; i++ {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(server.Health{Status: "ok", Workers: 4, QueueCapacity: 64})
		})
		mux.HandleFunc("POST /v1/cell", func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.Copy(io.Discard, r.Body)
			time.Sleep(service)
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(resp)
		})
		ts := httptest.NewServer(mux)
		urls = append(urls, ts.URL)
		closers = append(closers, ts.Close)
	}
	return urls, func() {
		for _, c := range closers {
			c()
		}
	}, nil
}

// fabricStats builds the minimal stats document the coordinator's
// Summarize consumes. The fabric benchmark measures dispatch, not
// payload parsing, so the blob carries exactly the summarized metrics.
func fabricStats() (json.RawMessage, error) {
	return json.Marshal(metrics.Snapshot{
		SchemaVersion: metrics.SchemaVersion,
		Counters:      map[string]int64{"sim.cycles": 1200},
		Gauges: map[string]float64{
			"sim.instructions": 1000,
			"sim.branches":     200,
			"sim.mpki":         4.2,
			"sim.ipc":          0.9,
			"sim.accuracy":     0.97,
		},
	})
}

// replayPacked drains the packed cursor through the concrete
// *trace.Cursor.Next — the monomorphized path the fast core's front
// end takes. The loop body mirrors BenchmarkPackedReplay/packed: the
// checksum keeps the record loads live.
func replayPacked(b *testing.B, p *trace.Packed, n int) {
	b.ReportAllocs()
	cur := p.Cursor()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		cur.Reset()
		for j := 0; j < n; j++ {
			r, ok := cur.Next()
			if !ok {
				b.Fatalf("cursor ended after %d of %d records", j, n)
			}
			sum += uint64(r.Addr) + uint64(r.Len())
		}
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

// replayIface drains the same cursor through the trace.Source
// interface, keeping the dispatch tax visible in the trajectory. The
// drain lives behind a noinline boundary so the compiler cannot
// devirtualize the call back into the concrete cursor path.
func replayIface(b *testing.B, p *trace.Packed, n int) {
	b.ReportAllocs()
	cur := p.Cursor()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		cur.Reset()
		s, ok := drainSource(&cur, n)
		if !ok {
			b.Fatalf("source ended before %d records", n)
		}
		sum += s
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

//go:noinline
func drainSource(src trace.Source, n int) (uint64, bool) {
	var sum uint64
	for j := 0; j < n; j++ {
		r, ok := src.Next()
		if !ok {
			return sum, false
		}
		sum += uint64(r.Addr) + uint64(r.Len())
	}
	return sum, true
}

// replayStreaming regenerates the workload per operation — the cost a
// sweep pays per design point without materialize-once.
func replayStreaming(b *testing.B, wl string, seed uint64, n int) {
	b.ReportAllocs()
	var sum uint64
	for i := 0; i < b.N; i++ {
		src, err := workload.Make(wl, seed)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			r, ok := src.Next()
			if !ok {
				b.Fatalf("source ended after %d of %d records", j, n)
			}
			sum += uint64(r.Addr) + uint64(r.Len())
		}
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

// simPacked runs one full hook-free simulation per operation (the fast
// core) over a fresh cursor on the shared packed buffer.
func simPacked(b *testing.B, cfg sim.Config, p *trace.Packed, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur := p.Cursor()
		res := sim.RunWorkload(cfg, &cur, n)
		if !res.FastCore {
			b.Fatal("hook-free simulation did not take the fast core")
		}
		if res.Instructions() < int64(n)-1000 {
			b.Fatalf("retired %d of %d instructions", res.Instructions(), n)
		}
	}
}
