// Command zbench measures the repository's headline performance
// numbers — packed-replay ns/instr, the Source-interface dispatch tax,
// streaming generation cost, and full-simulation ns/instr per machine
// generation — and writes them as one schema-versioned JSON document.
//
// The intended workflow is a trajectory: each performance PR runs
// `make bench-json` and commits the resulting BENCH_<pr>.json next to
// the previous ones, so the repo history carries a machine-readable
// record of how the hot path moved. The schema is versioned so later
// tooling can consume old files; fields are only ever added.
//
// Usage:
//
//	zbench                   # print the document to stdout
//	zbench -out BENCH_6.json # write to a file
//	zbench -scale 200000     # instructions per measured operation
//	zbench -only replay      # measure a name-prefix subset
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// schema identifies the document layout. Bump only for breaking
// changes; additive fields keep the same version.
const schema = "zbench/1"

// benchDoc is the emitted document.
type benchDoc struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	CPUs        int          `json:"cpus"`
	Scale       int          `json:"scale"`
	Entries     []benchEntry `json:"entries"`
}

// benchEntry is one measured benchmark.
type benchEntry struct {
	// Name identifies the measurement ("replay/packed", "sim/z15", ...).
	Name string `json:"name"`
	// Instructions is the per-operation instruction count (the -scale).
	Instructions int `json:"instructions"`
	// Iterations is how many operations testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// WallNsPerOp is wall time per operation (one full pass).
	WallNsPerOp int64 `json:"wall_ns_per_op"`
	// NsPerInstr is the headline: wall time per instruction.
	NsPerInstr float64 `json:"ns_per_instr"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

func main() {
	var (
		out   = flag.String("out", "", "output path (default: stdout)")
		scale = flag.Int("scale", 200_000, "instructions per measured operation")
		seed  = flag.Uint64("seed", 42, "workload seed")
		wl    = flag.String("workload", "lspr", "workload for the replay benchmarks")
		only  = flag.String("only", "", "measure only entries whose name has this prefix")
	)
	flag.Parse()

	entries, err := measure(*scale, *seed, *wl, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	doc := benchDoc{
		Schema:      schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Scale:       *scale,
		Entries:     entries,
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "zbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "zbench: wrote %d entries to %s\n", len(entries), *out)
}

// measure runs every selected benchmark through testing.Benchmark and
// renders the results as entries. Progress goes to stderr because the
// document may be going to stdout.
func measure(scale int, seed uint64, wl, only string) ([]benchEntry, error) {
	p, err := workload.MakePacked(wl, seed, scale)
	if err != nil {
		return nil, err
	}

	type bench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []bench{
		{"replay/packed", func(b *testing.B) { replayPacked(b, p, scale) }},
		{"replay/packed-iface", func(b *testing.B) { replayIface(b, p, scale) }},
		{"replay/streaming", func(b *testing.B) { replayStreaming(b, wl, seed, scale) }},
	}
	for _, gen := range core.Generations() {
		cfg := sim.ForGeneration(gen)
		name := "sim/" + gen.Name
		benches = append(benches, bench{name, func(b *testing.B) { simPacked(b, cfg, p, scale) }})
	}

	var entries []benchEntry
	for _, bm := range benches {
		if only != "" && !strings.HasPrefix(bm.name, only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "zbench: %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("%s: benchmark did not run", bm.name)
		}
		entries = append(entries, benchEntry{
			Name:         bm.name,
			Instructions: scale,
			Iterations:   r.N,
			WallNsPerOp:  r.NsPerOp(),
			NsPerInstr:   float64(r.NsPerOp()) / float64(scale),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
		})
	}
	return entries, nil
}

// replayPacked drains the packed cursor through the concrete
// *trace.Cursor.Next — the monomorphized path the fast core's front
// end takes. The loop body mirrors BenchmarkPackedReplay/packed: the
// checksum keeps the record loads live.
func replayPacked(b *testing.B, p *trace.Packed, n int) {
	b.ReportAllocs()
	cur := p.Cursor()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		cur.Reset()
		for j := 0; j < n; j++ {
			r, ok := cur.Next()
			if !ok {
				b.Fatalf("cursor ended after %d of %d records", j, n)
			}
			sum += uint64(r.Addr) + uint64(r.Len())
		}
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

// replayIface drains the same cursor through the trace.Source
// interface, keeping the dispatch tax visible in the trajectory. The
// drain lives behind a noinline boundary so the compiler cannot
// devirtualize the call back into the concrete cursor path.
func replayIface(b *testing.B, p *trace.Packed, n int) {
	b.ReportAllocs()
	cur := p.Cursor()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		cur.Reset()
		s, ok := drainSource(&cur, n)
		if !ok {
			b.Fatalf("source ended before %d records", n)
		}
		sum += s
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

//go:noinline
func drainSource(src trace.Source, n int) (uint64, bool) {
	var sum uint64
	for j := 0; j < n; j++ {
		r, ok := src.Next()
		if !ok {
			return sum, false
		}
		sum += uint64(r.Addr) + uint64(r.Len())
	}
	return sum, true
}

// replayStreaming regenerates the workload per operation — the cost a
// sweep pays per design point without materialize-once.
func replayStreaming(b *testing.B, wl string, seed uint64, n int) {
	b.ReportAllocs()
	var sum uint64
	for i := 0; i < b.N; i++ {
		src, err := workload.Make(wl, seed)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			r, ok := src.Next()
			if !ok {
				b.Fatalf("source ended after %d of %d records", j, n)
			}
			sum += uint64(r.Addr) + uint64(r.Len())
		}
	}
	if sum == 0 {
		b.Fatal("replay checksum is zero")
	}
}

// simPacked runs one full hook-free simulation per operation (the fast
// core) over a fresh cursor on the shared packed buffer.
func simPacked(b *testing.B, cfg sim.Config, p *trace.Packed, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur := p.Cursor()
		res := sim.RunWorkload(cfg, &cur, n)
		if !res.FastCore {
			b.Fatal("hook-free simulation did not take the fast core")
		}
		if res.Instructions() < int64(n)-1000 {
			b.Fatalf("retired %d of %d instructions", res.Instructions(), n)
		}
	}
}
