// Command zdiff runs the differential equivalence harness
// (internal/equiv) over a grid of (config, workload) cells: every cell
// is executed along multiple paths that must agree exactly (packed vs
// streaming, pooled vs direct, cancellable vs plain run loop, reset
// reuse, event-log replay) plus metamorphic invariants, and any
// divergence is reported with the cell and the first diverging metric.
//
// Usage:
//
//	zdiff                           # full preset x generation grid
//	zdiff -configs z15 -scale 4000  # quick smoke (see `make diff-smoke`)
//	zdiff -perturb                  # prove detection: MUST report divergences
//	zdiff -listchecks
//
// Exit status: 0 all cells clean (or, with -perturb, divergence
// detected as demanded), 1 divergences found (or -perturb detected
// nothing), 2 usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zbp/internal/equiv"
	"zbp/internal/metrics"
	"zbp/internal/workload"
)

func main() {
	var (
		cfgArg   = flag.String("configs", "zEC12,z13,z14,z15", "comma-separated machine generations")
		wlArg    = flag.String("workloads", "", "comma-separated workloads (default: every preset)")
		scale    = flag.Int("scale", 20_000, "instructions per cell")
		seed     = flag.Uint64("seed", 42, "workload seed")
		par      = flag.Int("p", 0, "parallel cells (0 = GOMAXPROCS)")
		checkArg = flag.String("checks", "", "comma-separated check subset (default: all; see -listchecks)")
		perturb  = flag.Bool("perturb", false, "deliberately corrupt one BHT entry per cell; the run then MUST report divergences")
		verbose  = flag.Bool("v", false, "print every finding, not just the per-cell verdict table")
		list     = flag.Bool("listchecks", false, "list registered checks and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range equiv.Checks() {
			fmt.Printf("%-22s %s\n", c.Name, c.Kind)
		}
		return
	}

	workloads := workload.Names()
	if *wlArg != "" {
		workloads = splitList(*wlArg)
	}
	configs := splitList(*cfgArg)
	if len(configs) == 0 || len(workloads) == 0 {
		fmt.Fprintln(os.Stderr, "zdiff: need at least one config and one workload")
		os.Exit(2)
	}
	opts := equiv.Options{Checks: splitList(*checkArg), Perturb: *perturb}
	known := map[string]bool{}
	for _, n := range equiv.CheckNames() {
		known[n] = true
	}
	for _, n := range opts.Checks {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "zdiff: unknown check %q (try -listchecks)\n", n)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cells := equiv.Grid(configs, workloads, *seed, *scale)
	fmt.Printf("checking %d cells (%d configs x %d workloads, %d instructions each)...\n",
		len(cells), len(configs), len(workloads), *scale)
	start := time.Now()
	results := equiv.CheckGrid(ctx, cells, opts, *par)
	elapsed := time.Since(start).Round(time.Millisecond)

	tab := metrics.NewTable("cell", "checks", "verdict", "first finding")
	diverged := 0
	for _, r := range results {
		verdict, first := "ok", ""
		switch {
		case r.Err != nil:
			verdict, first = "ERROR", r.Err.Error()
			diverged++
		case !r.OK():
			fs := r.Findings()
			verdict = fmt.Sprintf("DIVERGED (%d)", len(fs))
			first = fs[0].String()
			diverged++
		}
		tab.Row(r.Cell.Name(), len(r.Checks), verdict, first)
		if *verbose {
			for _, f := range r.Findings() {
				fmt.Fprintf(os.Stderr, "%s\n", f)
			}
		}
	}
	tab.Render(os.Stdout)
	fmt.Printf("\n%d/%d cells diverged in %v\n", diverged, len(results), elapsed)

	if *perturb {
		// Inverted acceptance: the deliberate corruption must be caught.
		if diverged == 0 {
			fmt.Fprintln(os.Stderr, "zdiff: -perturb run detected NO divergence: the harness is blind")
			os.Exit(1)
		}
		fmt.Println("perturbation detected: harness end-to-end check passed")
		return
	}
	if diverged > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
