// Quickstart: build a z15 predictor, feed it a workload, read the
// results -- then poke the low-level core API directly.
package main

import (
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/sat"
	"zbp/internal/sim"
	"zbp/internal/workload"
	"zbp/internal/zarch"
)

func main() {
	// --- High level: run a synthetic workload on the full model. ---
	src, err := workload.Make("patterned", 42)
	if err != nil {
		panic(err)
	}
	res := sim.RunWorkload(sim.Z15(), src, 500_000)

	fmt.Println("z15 on the `patterned` workload:")
	fmt.Printf("  instructions      %d\n", res.Instructions())
	fmt.Printf("  cycles            %d (IPC %.2f)\n", res.Cycles, res.IPC())
	fmt.Printf("  branch accuracy   %.2f%%\n", 100*res.Accuracy())
	fmt.Printf("  MPKI              %.2f\n", res.MPKI())
	fmt.Printf("  CPRED fast redirects %d (taken branch every ~2 cycles)\n\n",
		res.Core.CPredFastRedirects)

	// --- Low level: drive the asynchronous lookahead core by hand. ---
	c := core.New(core.Z15())

	// Teach the BTB1 about one taken branch (as a completed surprise
	// would), then restart the search at the top of its line.
	c.Preload(1, btb.Info{
		Addr: 0x10008, Len: 4, Kind: zarch.KindUncondRel,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown,
	})
	c.Restart(0, 0x10000, 0)

	// The predictor searches ahead on its own clock; predictions appear
	// at the b5 stage of the 6-cycle pipeline.
	for i := 0; i < 10; i++ {
		c.Cycle()
		if p, ok := c.PopPred(0); ok {
			fmt.Printf("cycle %d: predicted branch at %s -> %s (taken=%v, stream %d)\n",
				c.Clock(), p.Addr, p.Target, p.Taken, p.Stream)
			break
		}
	}
	fmt.Printf("the BPL kept searching ahead: now at stream %d\n", streamOf(c))
}

func streamOf(c *core.Core) uint64 {
	s, _, _ := c.SearchProgress(0)
	return s
}
