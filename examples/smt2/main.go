// SMT2: two threads sharing the z15's single 64-byte search port on
// alternating cycles (paper §IV), compared against the same work run
// back-to-back on one thread, and against the pre-z15 dual-port design.
package main

import (
	"fmt"
	"os"

	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

const n = 400_000

func srcs(seedA, seedB uint64) []trace.Source {
	a, err := workload.Make("lspr-small", seedA)
	if err != nil {
		panic(err)
	}
	b, err := workload.Make("micro", seedB)
	if err != nil {
		panic(err)
	}
	return []trace.Source{trace.Limit(a, n), trace.Limit(b, n)}
}

func main() {
	tab := metrics.NewTable("configuration", "cycles", "aggregate IPC", "MPKI")

	// z15 SMT2: both threads at once, one shared port.
	s := srcs(1, 2)
	smt := sim.New(sim.Z15(), s).Run(0)
	tab.Row("z15 SMT2 (shared 64B port)", smt.Cycles,
		fmt.Sprintf("%.2f", smt.IPC()), fmt.Sprintf("%.2f", smt.MPKI()))

	// z15 single-thread, back to back.
	var totalCycles int64
	var totalInstr int64
	for i, src := range srcs(1, 2) {
		res := sim.New(sim.Z15(), []trace.Source{src}).Run(0)
		totalCycles += res.Cycles
		totalInstr += res.Instructions()
		_ = i
	}
	tab.Row("z15 two ST runs, serialized", totalCycles,
		fmt.Sprintf("%.2f", float64(totalInstr)/float64(totalCycles)), "--")

	// z14 SMT2: dual 32B ports, each thread searches every cycle.
	z14 := sim.ForGeneration(core.Z14())
	smt14 := sim.New(z14, srcs(1, 2)).Run(0)
	tab.Row("z14 SMT2 (dual 32B ports)", smt14.Cycles,
		fmt.Sprintf("%.2f", smt14.IPC()), fmt.Sprintf("%.2f", smt14.MPKI()))

	fmt.Printf("two heterogeneous threads, %d instructions each:\n\n", n)
	tab.Render(os.Stdout)
	fmt.Println("\nSMT2 finishes the pair faster than serializing them, at the cost")
	fmt.Println("of per-thread search rate (taken-branch period 6 vs 5 without CPRED).")
}
