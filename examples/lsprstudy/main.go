// LSPR study: the capacity levers of §II.A/§III on a large-footprint
// transactional workload -- BTB1 size, the second-level BTB, and the
// lookahead prefetch that hides L1I misses.
package main

import (
	"fmt"
	"os"

	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/workload"
)

const n = 1_000_000

func run(cfg sim.Config) sim.Result {
	src, err := workload.Make("lspr-large", 7)
	if err != nil {
		panic(err)
	}
	return sim.RunWorkload(cfg, src, n)
}

func main() {
	fmt.Printf("lspr-large workload, %d instructions per run\n\n", n)

	fmt.Println("1) BTB1 capacity (paper: 'increasing the size of the main BTB has a")
	fmt.Println("   very regular corresponding positive impact on performance'):")
	tab := metrics.NewTable("BTB1 entries", "MPKI", "IPC", "surprises")
	for _, rowBits := range []uint{8, 9, 10, 11} {
		cfg := sim.Z15()
		cfg.Core.BTB1.RowBits = rowBits
		res := run(cfg)
		tab.Row(cfg.Core.BTB1.Capacity(), fmt.Sprintf("%.2f", res.MPKI()),
			fmt.Sprintf("%.2f", res.IPC()), res.Threads[0].Surprises)
	}
	tab.Render(os.Stdout)

	fmt.Println("\n2) Second-level BTB (backfill + proactive triggers):")
	tab2 := metrics.NewTable("config", "surprises", "IPC", "backfills")
	for _, on := range []bool{true, false} {
		cfg := sim.Z15()
		cfg.Core.BTB1.RowBits = 9 // capacity pressure at this scale
		cfg.Core.BTB2Enabled = on
		res := run(cfg)
		name := "BTB2 off"
		if on {
			name = "BTB2 on"
		}
		tab2.Row(name, res.Threads[0].Surprises, fmt.Sprintf("%.2f", res.IPC()),
			res.Core.BTB2MissTriggers+res.Core.BTB2Proactive)
	}
	tab2.Render(os.Stdout)

	fmt.Println("\n3) Lookahead prefetch (the BPL search stream primes the I-cache):")
	tab3 := metrics.NewTable("config", "fetch stall cycles", "IPC", "useful prefetches")
	for _, on := range []bool{true, false} {
		cfg := sim.Z15()
		cfg.Prefetch = on
		res := run(cfg)
		name := "prefetch off"
		if on {
			name = "prefetch on"
		}
		tab3.Row(name, res.Threads[0].FetchStall, fmt.Sprintf("%.2f", res.IPC()),
			res.IC.PrefetchUseful)
	}
	tab3.Render(os.Stdout)
}
