// Generational: run the same LSPR-style workload across the modeled
// zEC12, z13, z14 and z15 predictors and watch MPKI fall -- the shape of
// the paper's headline result (§VIII).
package main

import (
	"fmt"
	"os"

	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/workload"
)

func main() {
	const n = 1_000_000
	tab := metrics.NewTable("machine", "MPKI", "accuracy", "IPC", "surprises")
	var prev float64
	for _, gen := range core.Generations() {
		src, err := workload.Make("lspr", 42)
		if err != nil {
			panic(err)
		}
		res := sim.RunWorkload(sim.ForGeneration(gen), src, n)
		delta := ""
		if prev > 0 {
			delta = " (" + metrics.Delta(prev, res.MPKI()) + ")"
		}
		tab.Row(gen.Name,
			fmt.Sprintf("%.2f%s", res.MPKI(), delta),
			fmt.Sprintf("%.4f", res.Accuracy()),
			fmt.Sprintf("%.2f", res.IPC()),
			res.Threads[0].Surprises)
		prev = res.MPKI()
	}
	fmt.Printf("LSPR-style workload, %d instructions per machine:\n\n", n)
	tab.Render(os.Stdout)
	fmt.Println("\npaper §VIII: mispredicts/1K instructions fell 9.6% (z13->z14)")
	fmt.Println("and another 25% (z14->z15) on LSPR workloads.")
}
