// Package zbp is a trace-driven, cycle-approximate Go model of the IBM
// z15 asynchronous lookahead branch predictor (Adiga et al., "The IBM
// z15 High Frequency Mainframe Branch Predictor", ISCA 2020), together
// with the zEC12/z13/z14 baseline configurations, synthetic LSPR-style
// workload generators, an instruction-cache hierarchy, a front-end
// consumption model, and a white-box verification harness.
//
// This package is the public facade: it re-exports the types and
// constructors a downstream user needs. The implementation lives in
// internal/ packages, one per modeled subsystem (see DESIGN.md).
//
// Quick start:
//
//	src, _ := zbp.NewWorkload("lspr", 42)
//	res, _ := zbp.Run(zbp.Z15(), src, 1_000_000)
//	fmt.Printf("MPKI %.2f, IPC %.2f\n", res.MPKI(), res.IPC())
package zbp

import (
	"context"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// Config is a full simulation setup: predictor core, front end and
// I-cache hierarchy.
type Config = sim.Config

// Result aggregates everything one run produced; see its methods
// (MPKI, IPC, Accuracy, ...) and embedded per-structure statistics.
type Result = sim.Result

// Source is a stream of architectural instruction records.
type Source = trace.Source

// Sim is a wired-up simulation instance for multi-step or SMT2 use.
type Sim = sim.Sim

// MachineConfig is a predictor-core configuration (one generation).
type MachineConfig = core.Config

// Z15 returns the full z15 model: 16K/128K two-level BTB, TAGE
// short+long PHT, perceptron, CTB-17, CRS with amnesty, CPRED with
// SKOOT, semi-inclusive BTB2 with periodic refresh.
func Z15() Config { return sim.Z15() }

// Z14 returns the z14 baseline (single PHT, BTBP, no SKOOT).
func Z14() Config { return sim.ForGeneration(core.Z14()) }

// Z13 returns the z13 baseline (9-deep GPV, no perceptron/CRS/CPRED).
func Z13() Config { return sim.ForGeneration(core.Z13()) }

// ZEC12 returns the original two-level design (4K/24K BTB).
func ZEC12() Config { return sim.ForGeneration(core.ZEC12()) }

// Generations returns the four machine presets oldest-first.
func Generations() []MachineConfig { return core.Generations() }

// Workloads lists the built-in synthetic workload names.
func Workloads() []string { return workload.Names() }

// NewWorkload builds a named deterministic workload trace source.
func NewWorkload(name string, seed uint64) (Source, error) {
	return workload.Make(name, seed)
}

// Limit bounds a source to n records.
func Limit(src Source, n int) Source { return trace.Limit(src, n) }

// Packed is an immutable, pre-validated, fully materialized trace.
// Build it once (MaterializeWorkload, trace.Pack or trace.LoadPacked)
// and replay it from any number of concurrent simulations via
// value-type cursors — the materialize-once, replay-many path every
// sweep in this repository uses.
type Packed = trace.Packed

// MaterializeWorkload generates n instructions of the named workload
// once and packs them for repeated replay:
//
//	p, _ := zbp.MaterializeWorkload("lspr", 42, 1_000_000)
//	c := p.Cursor()
//	res := zbp.Run(zbp.Z15(), &c, 1_000_000)
//
// Replays are byte-identical to the streaming source.
func MaterializeWorkload(name string, seed uint64, n int) (*Packed, error) {
	return workload.MakePacked(name, seed, n)
}

// ErrLiveLock reports that a simulation stopped making forward
// progress, which indicates a model bug. Returned (wrapped) by Run and
// RunContext.
var ErrLiveLock = sim.ErrLiveLock

// Run simulates n instructions of src on cfg (single thread). The
// error is non-nil only on live-lock (ErrLiveLock), a model bug.
func Run(cfg Config, src Source, n int) (Result, error) {
	return sim.RunWorkloadCtx(context.Background(), cfg, src, n)
}

// RunContext is Run with cooperative cancellation: when ctx is
// canceled mid-run the simulation stops within microseconds and
// returns the partial result (Truncated set) alongside ctx's error.
// This is the entry point for servers and other long-running
// processes; see also cmd/zbpd, which serves it over HTTP.
func RunContext(ctx context.Context, cfg Config, src Source, n int) (Result, error) {
	return sim.RunWorkloadCtx(ctx, cfg, src, n)
}

// NewSim builds a simulation over one source per hardware thread
// (pass two sources for SMT2). Bound the sources with Limit.
func NewSim(cfg Config, srcs []Source) *Sim { return sim.New(cfg, srcs) }
