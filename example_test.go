package zbp_test

import (
	"fmt"

	"zbp"
)

// ExampleRun simulates one workload on the z15 model and reads the
// headline metrics. Runs are deterministic, so the output is exact.
func ExampleRun() {
	src, err := zbp.NewWorkload("loops", 42)
	if err != nil {
		panic(err)
	}
	res, err := zbp.Run(zbp.Z15(), src, 100_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", res.Instructions())
	fmt.Println("all retired:", res.Instructions() == 100_000)
	fmt.Println("well predicted:", res.Accuracy() > 0.95)
	// Output:
	// instructions: 100000
	// all retired: true
	// well predicted: true
}

// ExampleGenerations walks the four modeled machine generations.
func ExampleGenerations() {
	for _, g := range zbp.Generations() {
		fmt.Printf("%s: BTB1 %dK entries\n", g.Name, g.BTB1.Capacity()/1024)
	}
	// Output:
	// zEC12: BTB1 4K entries
	// z13: BTB1 8K entries
	// z14: BTB1 8K entries
	// z15: BTB1 16K entries
}

// ExampleNewSim runs two threads in SMT2 mode.
func ExampleNewSim() {
	a, _ := zbp.NewWorkload("loops", 1)
	b, _ := zbp.NewWorkload("micro", 2)
	s := zbp.NewSim(zbp.Z15(), []zbp.Source{
		zbp.Limit(a, 20_000), zbp.Limit(b, 20_000),
	})
	res := s.Run(0)
	fmt.Println("threads:", len(res.Threads))
	fmt.Println("both finished:", res.Threads[0].Done && res.Threads[1].Done)
	// Output:
	// threads: 2
	// both finished: true
}
