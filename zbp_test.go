package zbp

import (
	"context"
	"errors"
	"testing"
)

// The facade tests exercise the public API exactly as README documents
// it.

func TestFacadeQuickstart(t *testing.T) {
	src, err := NewWorkload("loops", 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Z15(), src, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions() != 50_000 {
		t.Fatalf("retired %d", res.Instructions())
	}
	if res.MPKI() < 0 || res.IPC() <= 0 || res.Accuracy() <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
}

func TestFacadeRunContextCancel(t *testing.T) {
	src, err := NewWorkload("lspr", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, Z15(), src, 1_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Truncated {
		t.Error("canceled run not marked Truncated")
	}
}

func TestFacadeGenerations(t *testing.T) {
	gens := Generations()
	if len(gens) != 4 || gens[0].Name != "zEC12" || gens[3].Name != "z15" {
		t.Fatalf("generations: %v", gens)
	}
	for _, mk := range []func() Config{Z15, Z14, Z13, ZEC12} {
		cfg := mk()
		if err := cfg.Core.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeWorkloadsListed(t *testing.T) {
	names := Workloads()
	if len(names) < 10 {
		t.Fatalf("only %d workloads", len(names))
	}
	for _, name := range names {
		if _, err := NewWorkload(name, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := NewWorkload("no-such", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeSMT2(t *testing.T) {
	a, _ := NewWorkload("loops", 1)
	b, _ := NewWorkload("micro", 2)
	s := NewSim(Z15(), []Source{Limit(a, 20_000), Limit(b, 20_000)})
	res := s.Run(0)
	if len(res.Threads) != 2 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	for i, th := range res.Threads {
		if th.Instructions < 19_000 {
			t.Errorf("thread %d retired %d", i, th.Instructions)
		}
	}
}
