#!/bin/sh
# zwork_smoke.sh — end-to-end external-trace pipeline smoke:
# generate a native trace, export it to the ChampSim format, re-ingest
# it (conversion must be lossless for z traces), characterize it with
# zwork, simulate it locally as a file: workload through zsim, then
# boot zbpd with -trace-dir and prove POST /v1/simulate over the same
# file returns byte-identical stats to the local run. Used by
# `make zwork-smoke` and CI.
set -eu

ADDR="127.0.0.1:18941"
WORK="$(mktemp -d)"
LOG="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK" "$LOG"
}
trap cleanup EXIT

N=50000
go build -o "$WORK/ztrace" ./cmd/ztrace
go build -o "$WORK/zwork" ./cmd/zwork
go build -o "$WORK/zsim" ./cmd/zsim
go build -o "$WORK/zbpd" ./cmd/zbpd

# 1. generate -> export -> re-ingest; the round trip through the
# foreign format must be record-lossless for a native stream.
"$WORK/ztrace" -workload lspr -seed 7 -n "$N" -o "$WORK/ref.zbpt"
"$WORK/ztrace" -in "$WORK/ref.zbpt" -o "$WORK/ref.champsim"
INGEST=$("$WORK/ztrace" -in "$WORK/ref.champsim" -o "$WORK/ingested.zbpt")
echo "$INGEST" | grep -q "ingested $N champsim records -> $N z records (0 pads, 0 glue branches, 0 dropped)" || {
    echo "zwork-smoke: lossy round trip: $INGEST" >&2
    exit 1
}
echo "zwork-smoke: convert round trip ok"

# Conflicting flags must be a usage error, not a silent resolution.
if "$WORK/ztrace" -in "$WORK/ref.zbpt" -workload lspr 2>/dev/null; then
    echo "zwork-smoke: ztrace accepted conflicting -in/-workload" >&2
    exit 1
fi
echo "zwork-smoke: flag conflict rejected ok"

# 2. characterize the ingested trace; all four metric families must be
# present in the sidecar.
"$WORK/zwork" -workload "file:$WORK/ingested.zbpt" -json "$WORK/char.json"
for field in taken_rate transition_rate history_entropy h2p ref_mpki; do
    grep -q "\"$field\"" "$WORK/char.json" || {
        echo "zwork-smoke: characterization sidecar missing $field" >&2
        cat "$WORK/char.json" >&2
        exit 1
    }
done
echo "zwork-smoke: characterization ok"

# 3. simulate the ingested trace locally and capture canonical stats.
"$WORK/zsim" -workload "file:$WORK/ingested.zbpt" -n "$N" -stats-json "$WORK/local.json" >/dev/null
grep -q '"schema_version"' "$WORK/local.json" || {
    echo "zwork-smoke: zsim stats snapshot malformed" >&2
    exit 1
}
echo "zwork-smoke: zsim file workload ok"

# 4. the same cell through the service: requires -trace-dir, and the
# stats payload must be byte-identical to the local run.
"$WORK/zbpd" -addr "$ADDR" -workers 2 -trace-dir "$WORK" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "zwork-smoke: zbpd never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Without the allowlist the same request must be rejected, which the
# healthy path below then contrasts. (The trace path is relative to
# -trace-dir; the server resolves and confines it.)
curl -sf -X POST "http://$ADDR/v1/cell" \
    -d "{\"workload\":\"file:ingested.zbpt\",\"config\":\"z15\",\"instructions\":$N}" \
    >"$WORK/served.json"
# The cell response embeds the canonical stats payload (re-indented by
# the response encoder); strip whitespace on both sides and require the
# served response to contain the local snapshot's exact content.
LOCAL_COMPACT=$(tr -d ' \n\t' <"$WORK/local.json")
SERVED_COMPACT=$(tr -d ' \n\t' <"$WORK/served.json")
case "$SERVED_COMPACT" in
*"$LOCAL_COMPACT"*) ;;
*)
    echo "zwork-smoke: served stats differ from local zsim stats" >&2
    cat "$WORK/served.json" >&2
    exit 1
    ;;
esac
echo "zwork-smoke: served stats identical ok"

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "zwork-smoke: zbpd did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
PID=""
echo "zwork-smoke: all ok"
