#!/bin/sh
# serve_smoke.sh — boot zbpd, run one simulate request, check /healthz
# and /metrics, then SIGTERM it and require a clean drain. Used by
# `make serve-smoke` and CI.
set -eu

ADDR="127.0.0.1:18934"
BIN="$(mktemp -d)/zbpd"
LOG="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/zbpd
"$BIN" -addr "$ADDR" -workers 2 >"$LOG" 2>&1 &
PID=$!

# Wait for the listener (up to ~5s).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: zbpd never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

echo "serve-smoke: /healthz ok"

OUT=$(curl -sf -X POST "http://$ADDR/v1/simulate" \
    -d '{"workload":"loops","config":"z15","instructions":50000}')
echo "$OUT" | grep -q '"instructions": 50000' || {
    echo "serve-smoke: unexpected simulate response: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q '"truncated": false' || {
    echo "serve-smoke: simulate run was truncated: $OUT" >&2
    exit 1
}
echo "serve-smoke: /v1/simulate ok"

METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^zbpd_completed_total' || {
    echo "serve-smoke: /metrics missing zbpd_completed_total" >&2
    echo "$METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '# TYPE zbpd_requests_total gauge' || {
    echo "serve-smoke: /metrics missing TYPE lines" >&2
    exit 1
}
echo "serve-smoke: /metrics ok"

# Graceful shutdown: SIGTERM must drain and exit 0 well inside the
# grace budget.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: zbpd did not exit after SIGTERM" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || {
    echo "serve-smoke: zbpd exited non-zero after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
PID=""
echo "serve-smoke: graceful shutdown ok"
