#!/bin/sh
# jobs_smoke.sh — boot zbpd with a persistent result cache, drive the
# async job API end to end (submit, poll, stream), prove that an
# identical resubmission is served from the cache without simulating,
# then SIGTERM the server with a job in flight and require a clean
# drain. Used by `make jobs-smoke` and CI. No jq: responses are picked
# apart with grep/sed.
set -eu

ADDR="127.0.0.1:18935"
TMP="$(mktemp -d)"
BIN="$TMP/zbpd"
CACHE="$TMP/cache"
LOG="$TMP/zbpd.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/zbpd
"$BIN" -addr "$ADDR" -workers 2 -cache-dir "$CACHE" -audit-every 1 >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "jobs-smoke: zbpd never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "jobs-smoke: /healthz ok"

metric() {
    curl -sf "http://$ADDR/metrics" | grep "^$1" | sed 's/.* //'
}

SWEEP='{"sweep":{"workloads":["loops","micro"],"seeds":[1,2],"instructions":100000}}'

submit_and_wait() {
    CREATED=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$1")
    JOB=$(echo "$CREATED" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$JOB" ] || {
        echo "jobs-smoke: no job ID in submit response: $CREATED" >&2
        exit 1
    }
    i=0
    while :; do
        STATUS=$(curl -sf "http://$ADDR/v1/jobs/$JOB")
        echo "$STATUS" | grep -q '"state": "done"' && break
        echo "$STATUS" | grep -qE '"state": "(failed|canceled)"' && {
            echo "jobs-smoke: job $JOB did not finish cleanly: $STATUS" >&2
            exit 1
        }
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "jobs-smoke: job $JOB never finished: $STATUS" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# Cold run: every cell computed, nothing cached yet.
submit_and_wait "$SWEEP"
COLD_JOB="$JOB"
echo "jobs-smoke: cold sweep job $COLD_JOB done"

EVENTS=$(curl -sf "http://$ADDR/v1/jobs/$COLD_JOB/events")
echo "$EVENTS" | grep -q '"type":"cell"' || {
    echo "jobs-smoke: event stream has no cell events: $EVENTS" >&2
    exit 1
}
echo "$EVENTS" | grep -q '"type":"done"' || {
    echo "jobs-smoke: event stream did not terminate with done: $EVENTS" >&2
    exit 1
}
echo "jobs-smoke: event stream ok"

FAST_BEFORE=$(metric zbpd_fast_core_runs_total)
HITS_BEFORE=$(metric zbpd_cache_hits_total)

# Identical resubmission: served from the result cache — cache hits
# rise, and not one additional simulation runs (the fast-core counter,
# bumped once per simulated cell, must not move).
submit_and_wait "$SWEEP"
echo "jobs-smoke: cached sweep job $JOB done"

curl -sf "http://$ADDR/v1/jobs/$JOB" | grep -q '"cells_cached": 4' || {
    echo "jobs-smoke: resubmitted sweep was not fully cache-served" >&2
    curl -sf "http://$ADDR/v1/jobs/$JOB" >&2
    exit 1
}
FAST_AFTER=$(metric zbpd_fast_core_runs_total)
HITS_AFTER=$(metric zbpd_cache_hits_total)
[ "$FAST_BEFORE" = "$FAST_AFTER" ] || {
    echo "jobs-smoke: cached resubmission ran simulations ($FAST_BEFORE -> $FAST_AFTER)" >&2
    exit 1
}
awk -v a="$HITS_BEFORE" -v b="$HITS_AFTER" 'BEGIN { exit !(b > a) }' || {
    echo "jobs-smoke: cache hits did not rise ($HITS_BEFORE -> $HITS_AFTER)" >&2
    exit 1
}
echo "jobs-smoke: cache-served resubmission ok (hits $HITS_BEFORE -> $HITS_AFTER, fast-core runs unchanged)"

# SIGTERM with a job still running: drain must cancel it and exit 0.
curl -sf -X POST "http://$ADDR/v1/jobs" \
    -d '{"sweep":{"workloads":["lspr"],"seeds":[1,2,3,4],"instructions":5000000}}' >/dev/null
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "jobs-smoke: zbpd did not exit after SIGTERM with a running job" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || {
    echo "jobs-smoke: zbpd exited non-zero after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
PID=""
echo "jobs-smoke: graceful shutdown with running job ok"
