#!/bin/sh
# Allocation-regression guard for the simulation hot path.
#
# Runs the Table 1 capacity sweep (the benchmark every PR touches:
# full z15 model, packed-cursor replay, three BTB1 capacities) with
# -benchmem and fails if any sub-benchmark's allocs/op exceeds the
# checked-in ceiling. The ceiling lives in scripts/bench_allocs_ceiling.txt
# with ~25% headroom over the measured value; raise it only with a
# justification in the commit that does so.
#
# allocs/op here is per benchmark iteration (one full 200k-instruction
# simulation): predictor-structure construction plus any per-record
# leakage. Trace materialization happens outside the timed region, so a
# regression means the simulator itself started allocating.
set -eu
cd "$(dirname "$0")/.."

ceiling=$(cat scripts/bench_allocs_ceiling.txt)
out=$(go test -run '^$' -bench '^BenchmarkTable1CapacitySweep$' -benchmem -benchtime 2x .)
echo "$out"

max=$(echo "$out" | awk '
  / allocs\/op/ {
    for (i = 2; i <= NF; i++)
      if ($i == "allocs/op" && $(i-1) + 0 > m) m = $(i-1) + 0
  }
  END { print m + 0 }')

if [ "$max" -eq 0 ]; then
  echo "bench_allocs: failed to parse allocs/op from benchmark output" >&2
  exit 1
fi

echo "bench_allocs: max allocs/op = $max (ceiling $ceiling)"
if [ "$max" -gt "$ceiling" ]; then
  echo "bench_allocs: FAIL — capacity-sweep allocs/op $max exceeds ceiling $ceiling" >&2
  exit 1
fi
echo "bench_allocs: OK"
