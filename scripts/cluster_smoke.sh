#!/bin/sh
# cluster_smoke.sh — boot a coordinator over two real zbpd backends,
# run the same sweep twice, and prove the fleet behaves: the job
# completes on the first pass, the repeat is served almost entirely
# from the backends' result caches (rendezvous routing sends each cell
# back to the backend that computed it), and everything drains cleanly
# on SIGTERM. Used by `make cluster-smoke` and CI. No jq: responses
# are picked apart with grep/sed.
set -eu

B1="127.0.0.1:18961"
B2="127.0.0.1:18962"
CO="127.0.0.1:18963"
TMP="$(mktemp -d)"
BIN="$TMP/zbpd"
LOG1="$TMP/backend1.log"
LOG2="$TMP/backend2.log"
LOGC="$TMP/coord.log"

cleanup() {
    for p in "${CPID:-}" "${PID1:-}" "${PID2:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/zbpd

"$BIN" -addr "$B1" -workers 2 -cache-dir "$TMP/cache1" >"$LOG1" 2>&1 &
PID1=$!
"$BIN" -addr "$B2" -workers 2 -cache-dir "$TMP/cache2" >"$LOG2" 2>&1 &
PID2=$!

wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $2 never became healthy" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy "$B1" "backend 1" "$LOG1"
wait_healthy "$B2" "backend 2" "$LOG2"

"$BIN" -coordinator -backends "http://$B1,http://$B2" -addr "$CO" >"$LOGC" 2>&1 &
CPID=$!
wait_healthy "$CO" "coordinator" "$LOGC"

curl -sf "http://$CO/healthz" | grep -q '"role": "coordinator"' || {
    echo "cluster-smoke: coordinator healthz missing role" >&2
    curl -sf "http://$CO/healthz" >&2
    exit 1
}
echo "cluster-smoke: coordinator + 2 backends healthy"

metric() {
    curl -sf "http://$1/metrics" | grep "^$2" | sed 's/.* //'
}

SWEEP='{"sweep":{"workloads":["loops","micro"],"seeds":[1,2],"instructions":100000}}'
CELLS=4

submit_and_wait() {
    CREATED=$(curl -sf -X POST "http://$CO/v1/jobs" -d "$1")
    JOB=$(echo "$CREATED" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$JOB" ] || {
        echo "cluster-smoke: no job ID in submit response: $CREATED" >&2
        exit 1
    }
    i=0
    while :; do
        STATUS=$(curl -sf "http://$CO/v1/jobs/$JOB")
        echo "$STATUS" | grep -q '"state": "done"' && break
        echo "$STATUS" | grep -qE '"state": "(failed|canceled)"' && {
            echo "cluster-smoke: job $JOB did not finish cleanly: $STATUS" >&2
            exit 1
        }
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "cluster-smoke: job $JOB never finished: $STATUS" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# Cold pass: the grid is sharded over both backends and computed.
submit_and_wait "$SWEEP"
echo "cluster-smoke: cold sweep job $JOB done"

EVENTS=$(curl -sf "http://$CO/v1/jobs/$JOB/events")
echo "$EVENTS" | grep -q '"type":"cell"' || {
    echo "cluster-smoke: event stream has no cell events: $EVENTS" >&2
    exit 1
}
echo "$EVENTS" | grep -q '"backend"' || {
    echo "cluster-smoke: cell events carry no backend attribution: $EVENTS" >&2
    exit 1
}
echo "cluster-smoke: event stream ok (cells attributed to backends)"

HITS1_BEFORE=$(metric "$B1" zbpd_cache_hits_total)
HITS2_BEFORE=$(metric "$B2" zbpd_cache_hits_total)

# Warm pass: rendezvous routing must send each cell back to the
# backend that computed it, so >=90% of the grid is served from the
# backends' result caches.
submit_and_wait "$SWEEP"
echo "cluster-smoke: warm sweep job $JOB done"

curl -sf "http://$CO/v1/jobs/$JOB" | grep -q "\"cells_cached\": $CELLS" || {
    echo "cluster-smoke: warm sweep was not fully cache-served" >&2
    curl -sf "http://$CO/v1/jobs/$JOB" >&2
    exit 1
}
HITS1_AFTER=$(metric "$B1" zbpd_cache_hits_total)
HITS2_AFTER=$(metric "$B2" zbpd_cache_hits_total)
awk -v a1="$HITS1_BEFORE" -v a2="$HITS2_BEFORE" \
    -v b1="$HITS1_AFTER" -v b2="$HITS2_AFTER" -v cells="$CELLS" \
    'BEGIN { exit !((b1 - a1) + (b2 - a2) >= cells * 0.9) }' || {
    echo "cluster-smoke: backend cache hits rose by $((HITS1_AFTER - HITS1_BEFORE + HITS2_AFTER - HITS2_BEFORE)) of $CELLS cells, want >=90%" >&2
    exit 1
}
echo "cluster-smoke: warm pass >=90% cache-served (backend hits $HITS1_BEFORE+$HITS2_BEFORE -> $HITS1_AFTER+$HITS2_AFTER)"

# The coordinator's own counters must agree.
COORD_CACHED=$(metric "$CO" zbpd_coord_cells_cached_total)
awk -v c="$COORD_CACHED" -v cells="$CELLS" 'BEGIN { exit !(c >= cells) }' || {
    echo "cluster-smoke: coordinator cached-cell counter $COORD_CACHED below $CELLS" >&2
    exit 1
}

# SIGTERM everything: coordinator first, then backends; all must exit 0.
stop() {
    kill -TERM "$2"
    i=0
    while kill -0 "$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: $1 did not exit after SIGTERM" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$2" 2>/dev/null || {
        echo "cluster-smoke: $1 exited non-zero after SIGTERM" >&2
        cat "$3" >&2
        exit 1
    }
}
stop coordinator "$CPID" "$LOGC"
CPID=""
stop "backend 1" "$PID1" "$LOG1"
PID1=""
stop "backend 2" "$PID2" "$LOG2"
PID2=""
echo "cluster-smoke: graceful shutdown ok"
