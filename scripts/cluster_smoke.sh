#!/bin/sh
# cluster_smoke.sh — boot a coordinator over two real zbpd backends,
# exercise the fleet end to end, and prove the elastic-membership and
# coordinator-cache behavior: the cold sweep computes on the backends,
# the repeat sweep is served entirely from the coordinator's own
# result cache (zero backend dispatches), a third backend can be
# registered at runtime with `zbpctl backends add`, a member can be
# deregistered (draining first), and the whole fleet drains cleanly on
# SIGTERM. Used by `make cluster-smoke` and CI. No jq: responses are
# picked apart with grep/sed/awk.
set -eu

B1="127.0.0.1:18961"
B2="127.0.0.1:18962"
B3="127.0.0.1:18964"
CO="127.0.0.1:18963"
TMP="$(mktemp -d)"
BIN="$TMP/zbpd"
CTL="$TMP/zbpctl"
LOG1="$TMP/backend1.log"
LOG2="$TMP/backend2.log"
LOG3="$TMP/backend3.log"
LOGC="$TMP/coord.log"

cleanup() {
    for p in "${CPID:-}" "${PID1:-}" "${PID2:-}" "${PID3:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/zbpd
go build -o "$CTL" ./cmd/zbpctl

"$BIN" -addr "$B1" -workers 2 -cache-dir "$TMP/cache1" >"$LOG1" 2>&1 &
PID1=$!
"$BIN" -addr "$B2" -workers 2 -cache-dir "$TMP/cache2" >"$LOG2" 2>&1 &
PID2=$!

wait_healthy() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $2 never became healthy" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy "$B1" "backend 1" "$LOG1"
wait_healthy "$B2" "backend 2" "$LOG2"

# -audit-every -1: the coordinator's cache auditor re-dispatches
# sampled hits for real, which would break the zero-dispatch
# assertions below.
"$BIN" -coordinator -backends "http://$B1,http://$B2" -audit-every -1 \
    -addr "$CO" >"$LOGC" 2>&1 &
CPID=$!
wait_healthy "$CO" "coordinator" "$LOGC"

curl -sf "http://$CO/healthz" | grep -q '"role": "coordinator"' || {
    echo "cluster-smoke: coordinator healthz missing role" >&2
    curl -sf "http://$CO/healthz" >&2
    exit 1
}
echo "cluster-smoke: coordinator + 2 backends healthy"

# metric prints one metric's value; the name must match exactly up to
# its label block ("backends" must not also match "backends_version").
metric() {
    curl -sf "http://$1/metrics" | grep "^$2[ {]" | sed 's/.* //'
}

# dispatched sums the coordinator's per-backend dispatch counters: how
# many /v1/cell calls ever left the coordinator.
dispatched() {
    curl -sf "http://$CO/healthz" |
        grep -o '"dispatched": [0-9]*' |
        awk '{ s += $2 } END { print s + 0 }'
}

SWEEP='{"sweep":{"workloads":["loops","micro"],"seeds":[1,2],"instructions":100000}}'
CELLS=4

submit_and_wait() {
    CREATED=$(curl -sf -X POST "http://$CO/v1/jobs" -d "$1")
    JOB=$(echo "$CREATED" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$JOB" ] || {
        echo "cluster-smoke: no job ID in submit response: $CREATED" >&2
        exit 1
    }
    i=0
    while :; do
        STATUS=$(curl -sf "http://$CO/v1/jobs/$JOB")
        echo "$STATUS" | grep -q '"state": "done"' && break
        echo "$STATUS" | grep -qE '"state": "(failed|canceled)"' && {
            echo "cluster-smoke: job $JOB did not finish cleanly: $STATUS" >&2
            exit 1
        }
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "cluster-smoke: job $JOB never finished: $STATUS" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# Cold pass: the grid is sharded over both backends and computed.
submit_and_wait "$SWEEP"
echo "cluster-smoke: cold sweep job $JOB done"

EVENTS=$(curl -sf "http://$CO/v1/jobs/$JOB/events")
echo "$EVENTS" | grep -q '"type":"cell"' || {
    echo "cluster-smoke: event stream has no cell events: $EVENTS" >&2
    exit 1
}
echo "$EVENTS" | grep -q '"backend"' || {
    echo "cluster-smoke: cell events carry no backend attribution: $EVENTS" >&2
    exit 1
}
echo "cluster-smoke: event stream ok (cells attributed to backends)"

HITS_BEFORE=$(metric "$CO" zbpd_coord_cache_hits_total)
DISP_BEFORE=$(dispatched)

# Warm pass: the repeat grid must be served entirely from the
# coordinator's own result cache — every cell a coordinator cache hit,
# not one request reaching a backend.
submit_and_wait "$SWEEP"
echo "cluster-smoke: warm sweep job $JOB done"

curl -sf "http://$CO/v1/jobs/$JOB" | grep -q "\"cells_cached\": $CELLS" || {
    echo "cluster-smoke: warm sweep was not fully cache-served" >&2
    curl -sf "http://$CO/v1/jobs/$JOB" >&2
    exit 1
}
HITS_AFTER=$(metric "$CO" zbpd_coord_cache_hits_total)
DISP_AFTER=$(dispatched)
[ $((HITS_AFTER - HITS_BEFORE)) -eq "$CELLS" ] || {
    echo "cluster-smoke: coordinator cache hits rose by $((HITS_AFTER - HITS_BEFORE)), want $CELLS" >&2
    exit 1
}
[ "$DISP_AFTER" -eq "$DISP_BEFORE" ] || {
    echo "cluster-smoke: warm sweep dispatched $((DISP_AFTER - DISP_BEFORE)) cells to backends, want 0" >&2
    exit 1
}
echo "cluster-smoke: warm pass fully coordinator-cache-served ($CELLS hits, 0 backend dispatches)"

# Elastic membership: boot a third backend and register it at runtime.
"$BIN" -addr "$B3" -workers 2 -cache-dir "$TMP/cache3" >"$LOG3" 2>&1 &
PID3=$!
wait_healthy "$B3" "backend 3" "$LOG3"

"$CTL" -addr "http://$CO" backends add "http://$B3" >/dev/null || {
    echo "cluster-smoke: zbpctl backends add failed" >&2
    exit 1
}
"$CTL" -addr "http://$CO" backends list | grep -q "http://$B3" || {
    echo "cluster-smoke: registered backend missing from backends list" >&2
    "$CTL" -addr "http://$CO" backends list >&2
    exit 1
}
N_BACKENDS=$(metric "$CO" zbpd_coord_backends)
[ "$N_BACKENDS" -eq 3 ] || {
    echo "cluster-smoke: coordinator reports $N_BACKENDS backends after add, want 3" >&2
    exit 1
}
echo "cluster-smoke: third backend registered at runtime"

# Deregister one of the original members: the removal must drain and
# the fleet must keep answering.
"$CTL" -addr "http://$CO" backends rm "http://$B1" | grep -q '"drained": true' || {
    echo "cluster-smoke: backends rm did not report a drained removal" >&2
    exit 1
}
N_BACKENDS=$(metric "$CO" zbpd_coord_backends)
[ "$N_BACKENDS" -eq 2 ] || {
    echo "cluster-smoke: coordinator reports $N_BACKENDS backends after rm, want 2" >&2
    exit 1
}
echo "cluster-smoke: backend deregistered (drained) at runtime"

# The repeat sweep must still be fully coordinator-cache-served on the
# churned fleet: the cached bytes live on the coordinator, so losing
# the backend that computed them costs nothing.
DISP_BEFORE=$(dispatched)
submit_and_wait "$SWEEP"
curl -sf "http://$CO/v1/jobs/$JOB" | grep -q "\"cells_cached\": $CELLS" || {
    echo "cluster-smoke: post-churn repeat sweep was not fully cache-served" >&2
    curl -sf "http://$CO/v1/jobs/$JOB" >&2
    exit 1
}
DISP_AFTER=$(dispatched)
[ "$DISP_AFTER" -eq "$DISP_BEFORE" ] || {
    echo "cluster-smoke: post-churn repeat dispatched $((DISP_AFTER - DISP_BEFORE)) cells, want 0" >&2
    exit 1
}
echo "cluster-smoke: post-churn repeat sweep served without backend dispatches"

# SIGTERM everything: coordinator first, then backends; all must exit 0.
stop() {
    kill -TERM "$2"
    i=0
    while kill -0 "$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: $1 did not exit after SIGTERM" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$2" 2>/dev/null || {
        echo "cluster-smoke: $1 exited non-zero after SIGTERM" >&2
        cat "$3" >&2
        exit 1
    }
}
stop coordinator "$CPID" "$LOGC"
CPID=""
stop "backend 1" "$PID1" "$LOG1"
PID1=""
stop "backend 2" "$PID2" "$LOG2"
PID2=""
stop "backend 3" "$PID3" "$LOG3"
PID3=""
echo "cluster-smoke: graceful shutdown ok"
