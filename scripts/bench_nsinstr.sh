#!/bin/sh
# Replay-throughput regression guard for the packed fast path.
#
# Runs the headline BenchmarkPackedReplay/packed sub-benchmark (the
# monomorphized cursor drain the fast core's front end rides) and
# fails if its ns/instr metric exceeds the checked-in ceiling in
# scripts/bench_nsinstr_ceiling.txt, or if the drain allocates at all.
#
# The ceiling is the acceptance bound from the fast-core PR (8
# ns/instr; measured ~2.2-2.4 on CI-class hardware, so there is
# generous headroom for machine noise). A breach means a change put
# interface dispatch, a non-SSA-able record shape, or an allocation
# back on the per-record path — see the trace.Rec and trace.Cursor doc
# comments for the invariants that keep it fast.
set -eu
cd "$(dirname "$0")/.."

ceiling=$(cat scripts/bench_nsinstr_ceiling.txt)
out=$(go test -run '^$' -bench '^BenchmarkPackedReplay$/^packed$' -benchmem -benchtime 2s .)
echo "$out"

nsinstr=$(echo "$out" | awk '
  /BenchmarkPackedReplay\/packed(-[0-9]+)?[[:space:]]/ {
    for (i = 2; i <= NF; i++)
      if ($i == "ns/instr") { v = $(i-1) + 0; if (v > m) m = v }
  }
  END { print m + 0 }')

allocs=$(echo "$out" | awk '
  /BenchmarkPackedReplay\/packed(-[0-9]+)?[[:space:]]/ {
    for (i = 2; i <= NF; i++)
      if ($i == "allocs/op" && $(i-1) + 0 > m) m = $(i-1) + 0
  }
  END { print m + 0 }')

if awk -v v="$nsinstr" 'BEGIN { exit !(v <= 0) }'; then
  echo "bench_nsinstr: failed to parse ns/instr from benchmark output" >&2
  exit 1
fi

echo "bench_nsinstr: packed replay = $nsinstr ns/instr (ceiling $ceiling), $allocs allocs/op"
if awk -v v="$nsinstr" -v c="$ceiling" 'BEGIN { exit !(v > c) }'; then
  echo "bench_nsinstr: FAIL — packed replay $nsinstr ns/instr exceeds ceiling $ceiling" >&2
  exit 1
fi
if [ "$allocs" -gt 0 ]; then
  echo "bench_nsinstr: FAIL — packed replay allocated ($allocs allocs/op, want 0)" >&2
  exit 1
fi
echo "bench_nsinstr: OK"
